// Ablation (Table 1 / Section 5.1): RL *without* the constraint solver.
// Candidates go straight to evaluation and invalid partitions earn zero
// reward; the paper reports this baseline never finds a valid partition
// because valid solutions are ultra-sparse under the MCM constraints.
//
// This bench also measures that sparsity directly: the fraction of
// uniformly random assignments that are statically valid.
#include <cstdio>

#include "common/env.h"
#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "rl/env.h"
#include "search/search.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm;
  mcm::telemetry::RunReport report =
      mcm::bench::MakeBenchReport("ablation_no_solver");
  mcm::telemetry::PhaseTimer phase_timer(report, "ablation");
  const int budget = static_cast<int>(ScaledInt("MCM_ABLATION_BUDGET", 80, 1000));
  std::printf("=== Ablation: RL with vs without the constraint solver ===\n");

  const DatasetSplit split = SplitCorpus(MakeCorpus());
  const Graph& graph = split.test.front();
  std::printf("graph: %s (%d nodes, 36 chips)\n", graph.name().c_str(),
              graph.NumNodes());

  // Density of valid assignments under uniform sampling (no solver).
  {
    Rng rng(3);
    const int trials = 200000;
    int valid = 0;
    Partition p = Partition::Empty(graph.NumNodes(), 36);
    for (int t = 0; t < trials; ++t) {
      for (int& chip : p.assignment) {
        chip = static_cast<int>(rng.UniformInt(36));
      }
      if (IsStaticallyValid(graph, p)) ++valid;
    }
    std::printf("statically valid fraction of uniform assignments: %d / %d "
                "(%.5f%%)\n", valid, trials, 100.0 * valid / trials);
    report.SetValue("uniform_valid_fraction",
                    static_cast<double>(valid) / trials);
  }

  AnalyticalCostModel model{McmConfig{}};
  GraphContext context(graph, 36);
  Rng rng(4);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(graph, model, context.solver(), rng);
  PartitionEnv env(graph, model, baseline.eval.runtime_s);

  // RL without the solver.
  {
    RlConfig config = GetBenchScale() == BenchScale::kFull
                          ? RlConfig{}
                          : RlConfig::Quick();
    config.solver_mode = RlConfig::SolverMode::kNone;
    config.seed = 11;
    PolicyNetwork policy(config);
    NoSolverRlSearch search(policy, Rng(12));
    const SearchTrace trace = search.Run(context, env, budget);
    int valid_samples = 0;
    for (double r : trace.rewards) {
      if (r > 0.0) ++valid_samples;
    }
    std::printf("RL without solver: %d/%d valid samples, best improvement "
                "%.3f\n", valid_samples, budget, trace.BestWithin(trace.rewards.size()));
    report.SetValue("no_solver/valid_samples", valid_samples);
    report.SetValue("no_solver/best", trace.BestWithin(trace.rewards.size()));
  }
  // RL with the solver (same budget).
  {
    RlConfig config = GetBenchScale() == BenchScale::kFull
                          ? RlConfig{}
                          : RlConfig::Quick();
    config.seed = 11;
    PolicyNetwork policy(config);
    RlSearch search(policy, Rng(12));
    const SearchTrace trace = search.Run(context, env, budget);
    int valid_samples = 0;
    for (double r : trace.rewards) {
      if (r > 0.0) ++valid_samples;
    }
    std::printf("RL with solver:    %d/%d valid samples, best improvement "
                "%.3f\n", valid_samples, budget, trace.BestWithin(trace.rewards.size()));
    report.SetValue("with_solver/valid_samples", valid_samples);
    report.SetValue("with_solver/best",
                    trace.BestWithin(trace.rewards.size()));
  }
  std::printf("# paper reference: without the solver RL finds no valid "
              "partition even with many samples (Table 1, Section 5.1).\n");
  mcm::bench::WriteBenchReport(report);
  return 0;
}
