// Microbenchmarks and acceptance gates for the incremental (delta)
// partition evaluator (costmodel/delta_eval.h).
//
// Beyond the usual google-benchmark timings this binary measures two gate
// metrics directly (stopwatch over fixed candidate sets, so they are ratios
// of comparable work on the same machine) and records them under "gate/" in
// BENCH_micro_delta.json, where scripts/bench_compare.py --gate trips on
// regressions:
//
//   gate/delta_over_full_ratio     delta single-move re-score time over a
//                                  full Evaluate on BERT at 36 chips
//                                  (acceptance: <= 0.2, i.e. >= 5x faster)
//   gate/sa_delta_over_full_ratio  SA sweep wall time with --delta-eval 1
//                                  over the same sweep with 0
//   gate/hc_delta_over_full_ratio  the HillClimb equivalent
//
// Every comparison also asserts bit-identical results between the two
// paths, so the gate doubles as an end-to-end identity check at full scale.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "micro_common.h"

#include "common/logging.h"
#include "common/rng.h"
#include "costmodel/cost_model.h"
#include "costmodel/delta_eval.h"
#include "graph/generators.h"
#include "search/search.h"
#include "solver/modes.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

struct Prepared {
  Graph graph;
  Partition partition;
  // Single-node moves off `partition`: statically valid ones and ones the
  // evaluator must reject, both discovered with the evaluator itself.
  std::vector<std::pair<int, int>> valid_moves;    // (node, to_chip)
  std::vector<std::pair<int, int>> invalid_moves;  // (node, to_chip)
};

constexpr int kChips = 36;

const Prepared& BertCase() {
  static const auto* prepared = [] {
    auto* out = new Prepared;
    out->graph = MakeBert();
    CpSolver solver(out->graph, kChips);
    const ProbMatrix probs = ProbMatrix::Uniform(out->graph.NumNodes(), kChips);
    Rng rng(9);
    SolveResult solved =
        SolveSampleWithRestarts(solver, out->graph, probs, rng);
    MCM_CHECK(solved.success);
    out->partition = std::move(solved.partition);

    DeltaEvaluator probe(out->graph, McmConfig{});
    probe.Rebase(out->partition);
    Rng move_rng(11);
    for (int attempt = 0;
         attempt < 500000 &&
         (out->valid_moves.size() < 64 || out->invalid_moves.size() < 64);
         ++attempt) {
      const int node = static_cast<int>(
          move_rng.UniformInt(static_cast<std::uint64_t>(out->graph.NumNodes())));
      int chip = static_cast<int>(move_rng.UniformInt(kChips - 1));
      if (chip >= out->partition.chip(node)) ++chip;
      probe.Apply(node, chip);
      const bool valid = probe.StaticallyValid();
      probe.Undo();
      auto& bucket = valid ? out->valid_moves : out->invalid_moves;
      if (bucket.size() < 64) bucket.emplace_back(node, chip);
    }
    MCM_CHECK(!out->valid_moves.empty());
    MCM_CHECK(!out->invalid_moves.empty());
    return out;
  }();
  return *prepared;
}

void BM_FullEvaluate(benchmark::State& state) {
  const Prepared& prepared = BertCase();
  AnalyticalCostModel model{McmConfig{}};
  Partition candidate = prepared.partition;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [node, chip] = prepared.valid_moves[i];
    i = (i + 1) % prepared.valid_moves.size();
    const int prev = candidate.chip(node);
    candidate.assignment[static_cast<std::size_t>(node)] = chip;
    benchmark::DoNotOptimize(
        model.Evaluate(prepared.graph, candidate).runtime_s);
    candidate.assignment[static_cast<std::size_t>(node)] = prev;
  }
  state.counters["nodes"] = prepared.graph.NumNodes();
}
BENCHMARK(BM_FullEvaluate)->Unit(benchmark::kMicrosecond);

void BM_DeltaSingleMoveRescore(benchmark::State& state) {
  const Prepared& prepared = BertCase();
  DeltaEvaluator evaluator(prepared.graph, McmConfig{});
  evaluator.Rebase(prepared.partition);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [node, chip] = prepared.valid_moves[i];
    i = (i + 1) % prepared.valid_moves.size();
    evaluator.Apply(node, chip);
    benchmark::DoNotOptimize(evaluator.Score().runtime_s);
    evaluator.Undo();
  }
  state.counters["nodes"] = prepared.graph.NumNodes();
}
BENCHMARK(BM_DeltaSingleMoveRescore)->Unit(benchmark::kMicrosecond);

void BM_DeltaInvalidReject(benchmark::State& state) {
  const Prepared& prepared = BertCase();
  DeltaEvaluator evaluator(prepared.graph, McmConfig{});
  evaluator.Rebase(prepared.partition);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [node, chip] = prepared.invalid_moves[i];
    i = (i + 1) % prepared.invalid_moves.size();
    evaluator.Apply(node, chip);
    benchmark::DoNotOptimize(evaluator.StaticallyValid());
    evaluator.Undo();
  }
}
BENCHMARK(BM_DeltaInvalidReject)->Unit(benchmark::kMicrosecond);

void BM_DeltaRebase(benchmark::State& state) {
  const Prepared& prepared = BertCase();
  DeltaEvaluator evaluator(prepared.graph, McmConfig{});
  for (auto _ : state) {
    evaluator.Rebase(prepared.partition);
    benchmark::DoNotOptimize(evaluator.StaticallyValid());
  }
}
BENCHMARK(BM_DeltaRebase)->Unit(benchmark::kMicrosecond);

void BM_DeltaScorerSmallDiff(benchmark::State& state) {
  const Prepared& prepared = BertCase();
  AnalyticalCostModel model{McmConfig{}};
  DeltaScorer scorer(&model, &model);
  Partition candidate = prepared.partition;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [node, chip] = prepared.valid_moves[i];
    i = (i + 1) % prepared.valid_moves.size();
    const int prev = candidate.chip(node);
    candidate.assignment[static_cast<std::size_t>(node)] = chip;
    benchmark::DoNotOptimize(
        scorer.Evaluate(prepared.graph, candidate).runtime_s);
    candidate.assignment[static_cast<std::size_t>(node)] = prev;
  }
}
BENCHMARK(BM_DeltaScorerSmallDiff)->Unit(benchmark::kMicrosecond);

// --- Gate measurements -----------------------------------------------------

// Times `reps` passes over the valid single-move candidates on both paths,
// asserting bit-identical scores, and returns delta_time / full_time.
double MeasureSingleMoveRatio(telemetry::RunReport& report) {
  const Prepared& prepared = BertCase();
  AnalyticalCostModel model{McmConfig{}};
  DeltaEvaluator evaluator(prepared.graph, McmConfig{});
  evaluator.Rebase(prepared.partition);
  const int reps = 40;

  // Warm both paths once and check identity per candidate.
  Partition candidate = prepared.partition;
  for (const auto& [node, chip] : prepared.valid_moves) {
    const int prev = candidate.chip(node);
    candidate.assignment[static_cast<std::size_t>(node)] = chip;
    const EvalResult full = model.Evaluate(prepared.graph, candidate);
    evaluator.Apply(node, chip);
    const EvalResult delta = evaluator.Score();
    evaluator.Undo();
    candidate.assignment[static_cast<std::size_t>(node)] = prev;
    MCM_CHECK(full.valid == delta.valid);
    MCM_CHECK(full.runtime_s == delta.runtime_s);
    MCM_CHECK(full.latency_s == delta.latency_s);
  }

  const double full_start = telemetry::MonotonicSeconds();
  double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    for (const auto& [node, chip] : prepared.valid_moves) {
      const int prev = candidate.chip(node);
      candidate.assignment[static_cast<std::size_t>(node)] = chip;
      sink += model.Evaluate(prepared.graph, candidate).runtime_s;
      candidate.assignment[static_cast<std::size_t>(node)] = prev;
    }
  }
  const double full_s = telemetry::MonotonicSeconds() - full_start;

  const double delta_start = telemetry::MonotonicSeconds();
  double delta_sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    for (const auto& [node, chip] : prepared.valid_moves) {
      evaluator.Apply(node, chip);
      delta_sink += evaluator.Score().runtime_s;
      evaluator.Undo();
    }
  }
  const double delta_s = telemetry::MonotonicSeconds() - delta_start;
  MCM_CHECK(sink == delta_sink);

  const double ratio = delta_s / full_s;
  const double per =
      static_cast<double>(reps) *
      static_cast<double>(prepared.valid_moves.size());
  report.AddPhaseSeconds("gate_full_rescore", full_s);
  report.AddPhaseSeconds("gate_delta_rescore", delta_s);
  report.SetValue("gate/delta_over_full_ratio", ratio);
  std::printf("# gate: single-move re-score on %s (%d nodes, %d chips): "
              "full %.3f us, delta %.3f us -> %.1fx speedup\n",
              prepared.graph.name().c_str(), prepared.graph.NumNodes(), kChips,
              full_s * 1e6 / per, delta_s * 1e6 / per, 1.0 / ratio);
  return ratio;
}

// Runs `make_search()` twice on a corpus graph -- delta eval forced on and
// forced off -- asserting identical traces and incumbents, and records
// on/off wall times under the given phase/metric names.
template <typename MakeSearch>
void MeasureSweepRatio(telemetry::RunReport& report, const Graph& graph,
                       const char* label, const char* metric,
                       MakeSearch make_search, int budget) {
  AnalyticalCostModel model{McmConfig{}};
  CpSolver baseline_solver(graph, kChips);
  Rng baseline_rng(7);
  const BaselineResult baseline = ComputeHeuristicBaseline(
      graph, model, baseline_solver, baseline_rng);
  MCM_CHECK(baseline.eval.valid);

  SearchTrace traces[2];
  double elapsed[2] = {0.0, 0.0};
  Partition bests[2];
  double best_rewards[2] = {0.0, 0.0};
  for (int delta_on = 0; delta_on < 2; ++delta_on) {
    GraphContext context(graph, kChips);
    PartitionEnv env(graph, model, baseline.eval.runtime_s,
                     PartitionEnv::Objective::kThroughput,
                     /*eval_cache_capacity=*/0, /*fallback_model=*/nullptr,
                     /*retry_policy=*/nullptr, /*delta_eval=*/delta_on);
    auto search = make_search();
    const double start = telemetry::MonotonicSeconds();
    traces[delta_on] = search->Run(context, env, budget);
    elapsed[delta_on] = telemetry::MonotonicSeconds() - start;
    if (env.has_best()) {
      bests[delta_on] = env.best_partition();
      best_rewards[delta_on] = env.best_reward();
    }
  }
  MCM_CHECK(traces[0].rewards == traces[1].rewards) << label;
  MCM_CHECK(best_rewards[0] == best_rewards[1]) << label;
  MCM_CHECK(bests[0].assignment == bests[1].assignment) << label;

  // Clamp the denominator so a freakishly fast off-run cannot turn the
  // gate metric into inf/NaN.
  const double ratio = elapsed[1] / std::max(elapsed[0], 1e-6);
  report.AddPhaseSeconds(std::string(label) + "_delta_off", elapsed[0]);
  report.AddPhaseSeconds(std::string(label) + "_delta_on", elapsed[1]);
  report.SetValue(metric, ratio);
  std::printf("# gate: %s sweep on %s (budget %d): off %.3f s, on %.3f s "
              "(identical traces and best partitions)\n",
              label, graph.name().c_str(), budget, elapsed[0], elapsed[1]);
}

int RunMicroDelta(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::InitBenchRuntime(argc, argv);
  telemetry::RunReport report = bench::MakeBenchReport("micro_delta");
  bench::ReportingReporter reporter(report);
  {
    telemetry::PhaseTimer timer(report, "benchmarks");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  MeasureSingleMoveRatio(report);
  // SA anneals the solver's probability distribution, so its per-sample cost
  // is dominated by SAMPLE solves on small graphs -- the corpus graph keeps
  // this sweep honest about end-to-end (not just scoring) wall time.
  static const Graph* corpus_graph = [] {
    auto* corpus = new std::vector<Graph>(MakeCorpus());
    return &(*corpus)[30];
  }();
  MeasureSweepRatio(report, *corpus_graph, "sa",
                    "gate/sa_delta_over_full_ratio",
                    [] { return std::make_unique<SimulatedAnnealing>(Rng(9)); },
                    /*budget=*/120);
  // HillClimb re-scores single-node moves, the delta evaluator's home turf:
  // BERT at 36 chips makes the full-walk cost visible.
  MeasureSweepRatio(report, BertCase().graph, "hc",
                    "gate/hc_delta_over_full_ratio",
                    [] { return std::make_unique<HillClimbSearch>(Rng(9)); },
                    /*budget=*/4000);
  bench::WriteBenchReport(report);
  return 0;
}

}  // namespace
}  // namespace mcm

int main(int argc, char** argv) { return mcm::RunMicroDelta(argc, argv); }
