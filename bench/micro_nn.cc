// Microbenchmarks for the neural-network substrate: GraphSAGE forward,
// rollout sampling, and PPO updates at corpus and BERT scales.
#include <benchmark/benchmark.h>

#include "micro_common.h"

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"

namespace mcm {
namespace {

const Graph& GraphForCase(int selector) {
  static const Graph medium = MakeResNet("resnet", ResNetConfig{});
  static const Graph bert = MakeBert();
  return selector == 0 ? medium : bert;
}

RlConfig BenchRlConfig() {
  RlConfig config = RlConfig::Quick();
  config.seed = 77;
  return config;
}

void BM_GraphSageForward(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.PredictValue(context));
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_GraphSageForward)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_SampleRollout(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SampleRollout(context, rng).value_pred);
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_SampleRollout)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_PpoIteration(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  AnalyticalCostModel model{McmConfig{}};
  Rng rng(4);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(graph, model, context.solver(), rng);
  PartitionEnv env(graph, model, baseline.eval.runtime_s);
  RlConfig config = BenchRlConfig();
  config.rollouts_per_update = 8;
  config.epochs = 2;
  PolicyNetwork policy(config);
  PpoTrainer trainer(policy, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Iterate(context, env).mean_reward);
  }
  state.counters["nodes"] = graph.NumNodes();
  state.counters["samples/iter"] = config.rollouts_per_update;
}
BENCHMARK(BM_PpoIteration)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace mcm

MCM_MICROBENCH_MAIN("micro_nn")
