// Microbenchmarks for the neural-network substrate: the GEMM kernels
// (blocked vs naive reference, serial vs NN-pool threaded), NeighborMean,
// GraphSAGE forward, rollout sampling, and PPO updates at corpus and BERT
// scales.
//
// Besides the google-benchmark timings this binary measures one gate metric
// directly (a same-machine ratio, robust to runner speed) and records it
// under "gate/" in BENCH_micro_nn.json, where scripts/bench_compare.py
// --gate trips on regressions:
//
//   gate/nn_threaded_over_serial_ratio   BERT-scale GraphSAGE forward +
//                                        backward wall time at 8 NN threads
//                                        over the same work at 1 NN thread,
//                                        with bit-identical losses and
//                                        gradients MCM_CHECKed between the
//                                        two runs (< 1 on multi-core
//                                        machines; ~1 on a single core)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "micro_common.h"

#include "common/logging.h"
#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "nn/matrix.h"
#include "nn/modules.h"
#include "nn/tape.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"
#include "runtime/thread_pool.h"
#include "telemetry/trace.h"

namespace mcm {
namespace {

// ---- GEMM kernels -----------------------------------------------------------
//
// Shape 0 ("small") is a quick-config layer product; shape 1 ("large") is a
// BERT-scale embedding product, the case the blocked kernels and the
// parallel path are for.  The *Reference benches run the retained naive
// kernels on the same shapes, so a BENCH_micro_nn.json diff directly shows
// the kernel speedup.
struct GemmShape {
  int m, k, n;
};
GemmShape GemmCase(int selector) {
  return selector == 0 ? GemmShape{330, 48, 48} : GemmShape{2048, 128, 128};
}

Matrix RandomMatrix(int rows, int cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (float& x : m.data) {
    x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  return m;
}

template <void (*Kernel)(const Matrix&, const Matrix&, Matrix&, bool)>
void GemmBench(benchmark::State& state, int a_rows, int a_cols, int b_rows,
               int b_cols) {
  const Matrix a = RandomMatrix(a_rows, a_cols, 11);
  const Matrix b = RandomMatrix(b_rows, b_cols, 12);
  Matrix out;
  for (auto _ : state) {
    Kernel(a, b, out, /*accumulate=*/false);
    benchmark::DoNotOptimize(out.data.data());
  }
  state.counters["flops"] = 2.0 * a_rows * a_cols * b_cols;
}

void BM_MatMul(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMul>(state, s.m, s.k, s.k, s.n);
}
BENCHMARK(BM_MatMul)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulReference(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulReference>(state, s.m, s.k, s.k, s.n);
}
BENCHMARK(BM_MatMulReference)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulTransA(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransA>(state, s.m, s.k, s.m, s.n);
}
BENCHMARK(BM_MatMulTransA)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulTransAReference(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransAReference>(state, s.m, s.k, s.m, s.n);
}
BENCHMARK(BM_MatMulTransAReference)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_MatMulTransB(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransB>(state, s.m, s.k, s.n, s.k);
}
BENCHMARK(BM_MatMulTransB)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulTransBReference(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransBReference>(state, s.m, s.k, s.n, s.k);
}
BENCHMARK(BM_MatMulTransBReference)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMicrosecond);

// The blocked GEMMs at an explicit NN thread count, on the BERT-scale shape
// (the small shape never leaves the serial path).  Against BM_MatMul* (which
// run at the inherited default) this shows the intra-op scaling curve.
template <void (*Kernel)(const Matrix&, const Matrix&, Matrix&, bool)>
void ThreadedGemmBench(benchmark::State& state, int a_rows, int a_cols,
                       int b_rows, int b_cols) {
  SetNnThreadCount(static_cast<int>(state.range(0)));
  const Matrix a = RandomMatrix(a_rows, a_cols, 11);
  const Matrix b = RandomMatrix(b_rows, b_cols, 12);
  Matrix out;
  for (auto _ : state) {
    Kernel(a, b, out, /*accumulate=*/false);
    benchmark::DoNotOptimize(out.data.data());
  }
  state.counters["flops"] = 2.0 * a_rows * a_cols * b_cols;
  SetNnThreadCount(0);  // Back to inheriting the runtime thread count.
}

void BM_MatMulThreaded(benchmark::State& state) {
  const GemmShape s = GemmCase(1);
  ThreadedGemmBench<MatMul>(state, s.m, s.k, s.k, s.n);
}
BENCHMARK(BM_MatMulThreaded)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_MatMulTransAThreaded(benchmark::State& state) {
  const GemmShape s = GemmCase(1);
  ThreadedGemmBench<MatMulTransA>(state, s.m, s.k, s.m, s.n);
}
BENCHMARK(BM_MatMulTransAThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

const Graph& GraphForCase(int selector) {
  static const Graph medium = MakeResNet("resnet", ResNetConfig{});
  static const Graph bert = MakeBert();
  return selector == 0 ? medium : bert;
}

RlConfig BenchRlConfig() {
  RlConfig config = RlConfig::Quick();
  config.seed = 77;
  return config;
}

void BM_GraphSageForward(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  // Disable the embedding cache so this measures the full forward pass.
  policy.set_embedding_cache_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.PredictValue(context));
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_GraphSageForward)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_GraphSageForwardCached(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  policy.set_embedding_cache_enabled(true);
  benchmark::DoNotOptimize(policy.PredictValue(context));  // Warm the cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.PredictValue(context));
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_GraphSageForwardCached)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(10);

void BM_SampleRollout(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SampleRollout(context, rng).value_pred);
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_SampleRollout)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_PpoIteration(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  AnalyticalCostModel model{McmConfig{}};
  Rng rng(4);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(graph, model, context.solver(), rng);
  PartitionEnv env(graph, model, baseline.eval.runtime_s);
  RlConfig config = BenchRlConfig();
  config.rollouts_per_update = 8;
  config.epochs = 2;
  PolicyNetwork policy(config);
  PpoTrainer trainer(policy, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Iterate(context, env).mean_reward);
  }
  state.counters["nodes"] = graph.NumNodes();
  state.counters["samples/iter"] = config.rollouts_per_update;
}
BENCHMARK(BM_PpoIteration)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(2);

// ---- NeighborMean ------------------------------------------------------------

constexpr int kSageHiddenDim = 128;  // BERT-scale embedding width.

const NeighborLists& ListsForCase(int selector) {
  static const NeighborLists medium = BuildNeighborLists(GraphForCase(0));
  static const NeighborLists bert = BuildNeighborLists(GraphForCase(1));
  return selector == 0 ? medium : bert;
}

void BM_NeighborMeanForward(benchmark::State& state) {
  const NeighborLists& lists = ListsForCase(static_cast<int>(state.range(0)));
  const Matrix x =
      RandomMatrix(lists.num_rows(), kSageHiddenDim, 13);
  for (auto _ : state) {
    Tape tape;
    benchmark::DoNotOptimize(
        tape.value(tape.NeighborMeanOp(tape.Constant(x), &lists)).data.data());
  }
  state.counters["nodes"] = lists.num_rows();
}
BENCHMARK(BM_NeighborMeanForward)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_NeighborMeanFwdBwd(benchmark::State& state) {
  const NeighborLists& lists = ListsForCase(static_cast<int>(state.range(0)));
  Matrix value = RandomMatrix(lists.num_rows(), kSageHiddenDim, 14);
  Matrix grad(lists.num_rows(), kSageHiddenDim);
  Matrix ones(kSageHiddenDim, 1);
  std::fill(ones.data.begin(), ones.data.end(), 1.0f);
  for (auto _ : state) {
    Tape tape;
    const VarId x = tape.Parameter(&value, &grad);
    const VarId y = tape.NeighborMeanOp(x, &lists);
    tape.Backward(tape.MatMulOp(tape.MeanRowsOp(y), tape.Constant(ones)));
    benchmark::DoNotOptimize(grad.data.data());
    grad.Zero();
  }
  state.counters["nodes"] = lists.num_rows();
}
BENCHMARK(BM_NeighborMeanFwdBwd)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

// ---- Gate measurement --------------------------------------------------------

// One BERT-scale GraphSAGE forward + backward to a scalar readout.  Returns
// the loss; parameter gradients accumulate into the network's grad matrices.
float SageFwdBwd(GraphSageNetwork& net, const Matrix& features,
                 const NeighborLists& lists, const Matrix& ones) {
  Tape tape;
  const VarId h = net.Forward(tape, tape.Constant(features), &lists);
  const VarId loss = tape.MatMulOp(tape.MeanRowsOp(h), tape.Constant(ones));
  tape.Backward(loss);
  return tape.value(loss).at(0, 0);
}

// Times the fwd+bwd pass at 1 vs 8 NN threads, MCM_CHECKing bit-identical
// losses and parameter gradients between the runs, and records
// gate/nn_threaded_over_serial_ratio.  The ratio is a same-machine
// comparison: < 1 whenever cores are available, ~1 on a single core; a
// regression (threading overhead without payoff, or a broken parallel path)
// pushes it well above 1.
void MeasureNnParallelGate(telemetry::RunReport& report) {
  const Graph& graph = GraphForCase(1);
  const NeighborLists& lists = ListsForCase(1);
  Rng rng(15);
  GraphSageNetwork net(kSageHiddenDim, kSageHiddenDim, /*num_layers=*/2, rng);
  const Matrix features = RandomMatrix(graph.NumNodes(), kSageHiddenDim, 16);
  Matrix ones(kSageHiddenDim, 1);
  std::fill(ones.data.begin(), ones.data.end(), 1.0f);
  const int reps = 5;

  // Identity check first: same loss, same gradient bits at both counts.
  SetNnThreadCount(1);
  const float serial_loss = SageFwdBwd(net, features, lists, ones);
  std::vector<Matrix> serial_grads;
  for (Param* p : net.Params()) {
    serial_grads.push_back(p->grad);
    p->grad.Zero();
  }
  SetNnThreadCount(8);
  const float threaded_loss = SageFwdBwd(net, features, lists, ones);
  MCM_CHECK(serial_loss == threaded_loss);
  {
    std::size_t k = 0;
    for (Param* p : net.Params()) {
      MCM_CHECK(p->grad.data == serial_grads[k].data)
          << "gradient mismatch for " << p->name;
      p->grad.Zero();
      ++k;
    }
  }

  double elapsed[2] = {0.0, 0.0};
  float sinks[2] = {0.0f, 0.0f};
  const int counts[2] = {1, 8};
  for (int run = 0; run < 2; ++run) {
    SetNnThreadCount(counts[run]);
    const double start = telemetry::MonotonicSeconds();
    for (int r = 0; r < reps; ++r) {
      sinks[run] += SageFwdBwd(net, features, lists, ones);
      for (Param* p : net.Params()) p->grad.Zero();
    }
    elapsed[run] = telemetry::MonotonicSeconds() - start;
  }
  SetNnThreadCount(0);
  MCM_CHECK(sinks[0] == sinks[1]);

  // Clamp the denominator so a freakishly fast serial run cannot turn the
  // gate metric into inf/NaN.
  const double ratio = elapsed[1] / std::max(elapsed[0], 1e-6);
  report.AddPhaseSeconds("gate_nn_fwdbwd_serial", elapsed[0]);
  report.AddPhaseSeconds("gate_nn_fwdbwd_threaded", elapsed[1]);
  report.SetValue("gate/nn_threaded_over_serial_ratio", ratio);
  std::printf("# gate: GraphSAGE fwd+bwd on %s (%d nodes, hidden %d): "
              "1 thread %.3f s, 8 threads %.3f s -> %.2fx speedup "
              "(bit-identical losses and gradients)\n",
              graph.name().c_str(), graph.NumNodes(), kSageHiddenDim,
              elapsed[0], elapsed[1], 1.0 / std::max(ratio, 1e-9));
}

int RunMicroNn(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  bench::InitBenchRuntime(argc, argv);
  telemetry::RunReport report = bench::MakeBenchReport("micro_nn");
  bench::ReportingReporter reporter(report);
  {
    telemetry::PhaseTimer timer(report, "benchmarks");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  MeasureNnParallelGate(report);
  bench::WriteBenchReport(report);
  return 0;
}

}  // namespace
}  // namespace mcm

int main(int argc, char** argv) { return mcm::RunMicroNn(argc, argv); }
