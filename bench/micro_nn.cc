// Microbenchmarks for the neural-network substrate: the GEMM kernels
// (blocked vs naive reference), GraphSAGE forward, rollout sampling, and
// PPO updates at corpus and BERT scales.
#include <benchmark/benchmark.h>

#include "micro_common.h"

#include "costmodel/cost_model.h"
#include "graph/generators.h"
#include "nn/matrix.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/ppo.h"

namespace mcm {
namespace {

// ---- GEMM kernels -----------------------------------------------------------
//
// Shape 0 ("small") is a quick-config layer product; shape 1 ("large") is a
// BERT-scale embedding product, the case the blocked kernels and the
// parallel path are for.  The *Reference benches run the retained naive
// kernels on the same shapes, so a BENCH_micro_nn.json diff directly shows
// the kernel speedup.
struct GemmShape {
  int m, k, n;
};
GemmShape GemmCase(int selector) {
  return selector == 0 ? GemmShape{330, 48, 48} : GemmShape{2048, 128, 128};
}

Matrix RandomMatrix(int rows, int cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (float& x : m.data) {
    x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  return m;
}

template <void (*Kernel)(const Matrix&, const Matrix&, Matrix&, bool)>
void GemmBench(benchmark::State& state, int a_rows, int a_cols, int b_rows,
               int b_cols) {
  const Matrix a = RandomMatrix(a_rows, a_cols, 11);
  const Matrix b = RandomMatrix(b_rows, b_cols, 12);
  Matrix out;
  for (auto _ : state) {
    Kernel(a, b, out, /*accumulate=*/false);
    benchmark::DoNotOptimize(out.data.data());
  }
  state.counters["flops"] = 2.0 * a_rows * a_cols * b_cols;
}

void BM_MatMul(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMul>(state, s.m, s.k, s.k, s.n);
}
BENCHMARK(BM_MatMul)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulReference(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulReference>(state, s.m, s.k, s.k, s.n);
}
BENCHMARK(BM_MatMulReference)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulTransA(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransA>(state, s.m, s.k, s.m, s.n);
}
BENCHMARK(BM_MatMulTransA)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulTransAReference(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransAReference>(state, s.m, s.k, s.m, s.n);
}
BENCHMARK(BM_MatMulTransAReference)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_MatMulTransB(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransB>(state, s.m, s.k, s.n, s.k);
}
BENCHMARK(BM_MatMulTransB)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

void BM_MatMulTransBReference(benchmark::State& state) {
  const GemmShape s = GemmCase(static_cast<int>(state.range(0)));
  GemmBench<MatMulTransBReference>(state, s.m, s.k, s.n, s.k);
}
BENCHMARK(BM_MatMulTransBReference)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMicrosecond);

const Graph& GraphForCase(int selector) {
  static const Graph medium = MakeResNet("resnet", ResNetConfig{});
  static const Graph bert = MakeBert();
  return selector == 0 ? medium : bert;
}

RlConfig BenchRlConfig() {
  RlConfig config = RlConfig::Quick();
  config.seed = 77;
  return config;
}

void BM_GraphSageForward(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  // Disable the embedding cache so this measures the full forward pass.
  policy.set_embedding_cache_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.PredictValue(context));
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_GraphSageForward)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_GraphSageForwardCached(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  policy.set_embedding_cache_enabled(true);
  benchmark::DoNotOptimize(policy.PredictValue(context));  // Warm the cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.PredictValue(context));
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_GraphSageForwardCached)
    ->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(10);

void BM_SampleRollout(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  PolicyNetwork policy(BenchRlConfig());
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SampleRollout(context, rng).value_pred);
  }
  state.counters["nodes"] = graph.NumNodes();
}
BENCHMARK(BM_SampleRollout)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_PpoIteration(benchmark::State& state) {
  const Graph& graph = GraphForCase(static_cast<int>(state.range(0)));
  GraphContext context(graph, 36);
  AnalyticalCostModel model{McmConfig{}};
  Rng rng(4);
  const BaselineResult baseline =
      ComputeHeuristicBaseline(graph, model, context.solver(), rng);
  PartitionEnv env(graph, model, baseline.eval.runtime_s);
  RlConfig config = BenchRlConfig();
  config.rollouts_per_update = 8;
  config.epochs = 2;
  PolicyNetwork policy(config);
  PpoTrainer trainer(policy, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.Iterate(context, env).mean_reward);
  }
  state.counters["nodes"] = graph.NumNodes();
  state.counters["samples/iter"] = config.rollouts_per_update;
}
BENCHMARK(BM_PpoIteration)->DenseRange(0, 1)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace mcm

MCM_MICROBENCH_MAIN("micro_nn")
