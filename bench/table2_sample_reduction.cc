// Table 2: number of samples (and reduction versus RL-from-scratch) needed
// to reach geomean throughput-improvement thresholds on the test dataset.
//
// Runs the same experiment as fig5_pretrain_curves (same seeds, identical
// traces) and prints the threshold table.  The paper's absolute levels
// (1.60x / 1.70x / 1.80x) are reported alongside substrate-relative levels;
// see EXPERIMENTS.md for why absolute improvement factors compress on this
// substrate.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm::bench;
  std::printf("=== Table 2: samples to reach geomean improvement levels "
              "(test set, analytical model) ===\n");
  const BenchScaleConfig config = BenchScaleConfig::FromEnv();
  mcm::telemetry::RunReport report = MakeBenchReport("table2_sample_reduction");
  ComparisonResult result;
  {
    mcm::telemetry::PhaseTimer timer(report, "comparison");
    result = RunCorpusComparison(config, /*seed=*/5);
  }
  AddComparison(report, result);
  PrintThresholdTable(
      "samples to threshold (reduction vs RL from scratch)", result.curves,
      /*paper_thresholds=*/{1.60, 1.70, 1.80});
  std::printf("\n# paper reference: RL Finetuning reduces samples by up to "
              "1.93x vs RL from scratch.\n");
  WriteBenchReport(report);
  return 0;
}
