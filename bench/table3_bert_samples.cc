// Table 3: number of samples (and reduction versus RL-from-scratch) needed
// to reach BERT throughput-improvement levels on the hardware simulator,
// plus the search-time translation at the paper's 26.97 s per hardware
// sample.
#include <cstdio>

#include "bench_common.h"

namespace {
// Section 5.3: "the elapsed time of getting a sample takes 26.97 seconds on
// average" on the real MCM package.
constexpr double kSecondsPerHardwareSample = 26.97;
}  // namespace

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm::bench;
  std::printf("=== Table 3: samples to reach BERT improvement levels "
              "(hardware simulator) ===\n");
  const BenchScaleConfig config = BenchScaleConfig::FromEnv();
  mcm::telemetry::RunReport report = MakeBenchReport("table3_bert_samples");
  ComparisonResult result;
  {
    mcm::telemetry::PhaseTimer timer(report, "comparison");
    result = RunBertComparison(config, /*seed=*/6);
  }
  AddComparison(report, result);
  PrintThresholdTable(
      "samples to threshold (reduction vs RL from scratch)", result.curves,
      /*paper_thresholds=*/{2.55, 2.60, 2.65});

  // Search-time reduction headline: samples to 95% of RL-final, translated
  // into hardware time at the paper's per-sample cost.
  const MethodCurve* rl = nullptr;
  const MethodCurve* finetune = nullptr;
  for (const MethodCurve& curve : result.curves) {
    if (curve.name == std::string("RL")) rl = &curve;
    if (curve.name == std::string("RL Finetuning")) finetune = &curve;
  }
  if (rl != nullptr && finetune != nullptr) {
    const double level = 0.95 * rl->best_so_far.back();
    auto samples_to = [&](const MethodCurve& curve) -> long {
      for (std::size_t i = 0; i < curve.best_so_far.size(); ++i) {
        if (curve.best_so_far[i] >= level) return static_cast<long>(i + 1);
      }
      return -1;
    };
    const long rl_samples = samples_to(*rl);
    const long ft_samples = samples_to(*finetune);
    if (rl_samples > 0 && ft_samples > 0) {
      std::printf("\n# search-time at %.2f s/hardware-sample: RL from "
                  "scratch %.1f min -> fine-tuning %.1f min (%.1fx fewer "
                  "samples)\n",
                  kSecondsPerHardwareSample,
                  rl_samples * kSecondsPerHardwareSample / 60.0,
                  ft_samples * kSecondsPerHardwareSample / 60.0,
                  static_cast<double>(rl_samples) / ft_samples);
    }
  }
  std::printf("# paper reference: fine-tuning cuts samples up to 21.15x "
              "(423 -> 20), i.e. >3 h -> ~9 min of search.\n");
  WriteBenchReport(report);
  return 0;
}
