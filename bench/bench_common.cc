#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/env.h"
#include "common/logging.h"
#include "common/stats.h"
#include "costmodel/delta_eval.h"
#include "graph/generators.h"
#include "hwsim/hardware_sim.h"
#include "partition/heuristics.h"
#include "rl/env.h"
#include "runtime/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mcm::bench {
namespace {

// Geomean across graphs at each sample index; inputs must share lengths.
std::vector<double> GeomeanCurves(
    const std::vector<std::vector<double>>& curves) {
  MCM_CHECK(!curves.empty());
  const std::size_t length = curves.front().size();
  std::vector<double> out(length, 0.0);
  for (std::size_t i = 0; i < length; ++i) {
    double log_sum = 0.0;
    for (const auto& curve : curves) {
      log_sum += std::log(std::max(curve[i], 1e-6));
    }
    out[i] = std::exp(log_sum / static_cast<double>(curves.size()));
  }
  return out;
}

// Runs the five methods on one (context, env) pair and returns their
// best-so-far curves of equal length `budget`.
std::vector<std::vector<double>> RunMethodsOnGraph(
    const BenchScaleConfig& config, const Checkpoint& checkpoint,
    GraphContext& context, PartitionEnv& env, int budget,
    std::uint64_t seed) {
  std::vector<std::vector<double>> curves;
  curves.reserve(kNumMethods);
  // Random.
  {
    RandomSearch search{Rng(HashCombine(seed, 1))};
    curves.push_back(search.Run(context, env, budget).BestSoFar());
  }
  // Simulated annealing.
  {
    SimulatedAnnealing search{Rng(HashCombine(seed, 2))};
    curves.push_back(search.Run(context, env, budget).BestSoFar());
  }
  // RL from scratch.
  {
    RlConfig rl = config.rl;
    rl.seed = HashCombine(seed, 3);
    PolicyNetwork policy(rl);
    RlSearch search(policy, Rng(HashCombine(seed, 4)));
    curves.push_back(search.Run(context, env, budget).BestSoFar());
  }
  // RL zero-shot from the pre-trained checkpoint.
  {
    PolicyNetwork policy(config.rl);
    PretrainPipeline::Restore(policy, checkpoint);
    RlSearch search(policy, Rng(HashCombine(seed, 5)), /*zero_shot=*/true,
                    "RL Zeroshot");
    curves.push_back(search.Run(context, env, budget).BestSoFar());
  }
  // RL fine-tuning from the pre-trained checkpoint.
  {
    PolicyNetwork policy(config.rl);
    PretrainPipeline::Restore(policy, checkpoint);
    RlSearch search(policy, Rng(HashCombine(seed, 6)), /*zero_shot=*/false,
                    "RL Finetuning");
    curves.push_back(search.Run(context, env, budget).BestSoFar());
  }
  return curves;
}

Checkpoint Pretrain(const BenchScaleConfig& config, std::uint64_t seed,
                    double* elapsed_seconds) {
  const double start_s = telemetry::MonotonicSeconds();
  DatasetSplit split = SplitCorpus(MakeCorpus());
  split.train.resize(static_cast<std::size_t>(
      std::min<int>(config.pretrain_graphs,
                    static_cast<int>(split.train.size()))));
  split.validation.resize(static_cast<std::size_t>(
      std::min<int>(config.validation_graphs,
                    static_cast<int>(split.validation.size()))));

  AnalyticalCostModel analytical{McmConfig{}};
  PretrainConfig pretrain;
  pretrain.rl = config.rl;
  pretrain.total_samples = config.pretrain_samples;
  pretrain.num_checkpoints = config.num_checkpoints;
  pretrain.validate_every = config.validate_every;
  pretrain.validation_zeroshot_samples = 10;
  pretrain.validation_finetune_samples =
      2 * config.rl.rollouts_per_update;
  pretrain.seed = seed;
  PretrainPipeline pipeline(pretrain, analytical);
  std::vector<Checkpoint> checkpoints = pipeline.Train(split.train);
  const int best = pipeline.Validate(checkpoints, split.validation);
  if (elapsed_seconds != nullptr) {
    *elapsed_seconds = telemetry::MonotonicSeconds() - start_s;
  }
  std::printf("# pre-training: %d graphs, %d samples, %zu checkpoints, "
              "picked checkpoint %d (finetune score %.3f)\n",
              static_cast<int>(split.train.size()), config.pretrain_samples,
              checkpoints.size(), best,
              checkpoints[static_cast<std::size_t>(best)].finetune_score);
  return std::move(checkpoints[static_cast<std::size_t>(best)]);
}

}  // namespace

void InitBenchRuntime(int argc, char** argv) {
  telemetry::InitTelemetryFromEnv();
  telemetry::RegisterStandardMetrics();
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
      SetDefaultThreadCount(std::stoi(argv[i + 1]));
      ++i;
    } else if (std::string(argv[i]) == "--nn-threads" && i + 1 < argc) {
      SetNnThreadCount(std::stoi(argv[i + 1]));
      ++i;
    } else if (std::string(argv[i]) == "--eval-cache" && i + 1 < argc) {
      SetDefaultEvalCacheCapacity(std::stoi(argv[i + 1]));
      ++i;
    } else if (std::string(argv[i]) == "--delta-eval" && i + 1 < argc) {
      SetDefaultDeltaEvalEnabled(std::stoi(argv[i + 1]));
      ++i;
    }
  }
  std::printf("# runtime: %d worker threads (override with --threads N or "
              "MCMPART_THREADS), %d NN kernel threads (--nn-threads N or "
              "MCMPART_NN_THREADS; 0 inherits --threads), eval cache %d "
              "entries (--eval-cache N or MCMPART_EVAL_CACHE; 0 disables), "
              "delta eval %s (--delta-eval 0|1 or MCMPART_DELTA_EVAL)\n",
              DefaultThreadCount(), NnThreadCount(),
              DefaultEvalCacheCapacity(),
              DefaultDeltaEvalEnabled() ? "on" : "off");
}

telemetry::RunReport MakeBenchReport(std::string_view name) {
  telemetry::RunReport report{std::string(name)};
  report.SetString("scale",
                   GetBenchScale() == BenchScale::kFull ? "full" : "quick");
  report.SetValue("threads", DefaultThreadCount());
  report.SetValue("nn_threads", NnThreadCount());
  return report;
}

void AddComparison(telemetry::RunReport& report,
                   const ComparisonResult& result) {
  report.AddPhaseSeconds("pretrain", result.pretrain_seconds);
  for (const MethodCurve& curve : result.curves) {
    if (curve.best_so_far.empty()) continue;
    report.SetValue("final/" + curve.name, curve.best_so_far.back());
    report.SetValue("samples/" + curve.name,
                    static_cast<double>(curve.best_so_far.size()));
  }
}

void WriteBenchReport(const telemetry::RunReport& report) {
  const std::string path = "BENCH_" + report.name() + ".json";
  if (report.Write(path)) {
    std::printf("# wrote %s\n", path.c_str());
  }
  telemetry::WriteTraceIfConfigured();
}

BenchScaleConfig BenchScaleConfig::FromEnv() {
  BenchScaleConfig config;
  config.pretrain_graphs =
      static_cast<int>(ScaledInt("MCM_PRETRAIN_GRAPHS", 10, 66));
  config.pretrain_samples =
      static_cast<int>(ScaledInt("MCM_PRETRAIN_SAMPLES", 400, 20000));
  config.num_checkpoints =
      static_cast<int>(ScaledInt("MCM_NUM_CHECKPOINTS", 6, 200));
  config.validation_graphs =
      static_cast<int>(ScaledInt("MCM_VALIDATION_GRAPHS", 2, 5));
  config.validate_every =
      static_cast<int>(ScaledInt("MCM_VALIDATE_EVERY", 3, 1));
  config.test_graphs = static_cast<int>(ScaledInt("MCM_TEST_GRAPHS", 6, 16));
  config.corpus_budget =
      static_cast<int>(ScaledInt("MCM_CORPUS_BUDGET", 80, 4000));
  config.bert_budget =
      static_cast<int>(ScaledInt("MCM_BERT_BUDGET", 60, 700));
  config.rl = GetBenchScale() == BenchScale::kFull ? RlConfig{}
                                                   : RlConfig::Quick();
  return config;
}

ComparisonResult RunCorpusComparison(const BenchScaleConfig& config,
                                     std::uint64_t seed) {
  ComparisonResult result;
  result.best_checkpoint = Pretrain(config, seed, &result.pretrain_seconds);

  DatasetSplit split = SplitCorpus(MakeCorpus());
  split.test.resize(static_cast<std::size_t>(
      std::min<int>(config.test_graphs,
                    static_cast<int>(split.test.size()))));

  AnalyticalCostModel analytical{McmConfig{}};
  // Per-method, per-graph best-so-far curves.
  std::vector<std::vector<std::vector<double>>> per_method(kNumMethods);
  for (std::size_t gi = 0; gi < split.test.size(); ++gi) {
    const Graph& graph = split.test[gi];
    GraphContext context(graph, config.rl.num_chips);
    Rng rng(HashCombine(seed, 700 + gi));
    const BaselineResult baseline = ComputeHeuristicBaseline(
        graph, analytical, context.solver(), rng);
    MCM_CHECK(baseline.eval.valid) << graph.name();
    PartitionEnv env(graph, analytical, baseline.eval.runtime_s);
    const auto curves =
        RunMethodsOnGraph(config, result.best_checkpoint, context, env,
                          config.corpus_budget, HashCombine(seed, 900 + gi));
    for (int m = 0; m < kNumMethods; ++m) {
      per_method[static_cast<std::size_t>(m)].push_back(
          curves[static_cast<std::size_t>(m)]);
    }
    std::printf("# test graph %-14s (%3d nodes): best  ", graph.name().c_str(),
                graph.NumNodes());
    for (int m = 0; m < kNumMethods; ++m) {
      std::printf("%s=%.3f ", kMethodNames[m],
                  curves[static_cast<std::size_t>(m)].back());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  for (int m = 0; m < kNumMethods; ++m) {
    result.curves.push_back(MethodCurve{
        kMethodNames[m],
        GeomeanCurves(per_method[static_cast<std::size_t>(m)])});
  }
  return result;
}

ComparisonResult RunBertComparison(const BenchScaleConfig& config,
                                   std::uint64_t seed) {
  ComparisonResult result;
  result.best_checkpoint = Pretrain(config, seed, &result.pretrain_seconds);

  const Graph bert = MakeBert();
  GraphContext context(bert, config.rl.num_chips);
  HardwareSim hardware;
  Rng rng(HashCombine(seed, 41));
  // The production-compiler baseline: greedy packing by weight footprint,
  // repaired to static validity.
  const Partition greedy =
      GreedyContiguousByParams(bert, config.rl.num_chips);
  const SolveResult repaired =
      RepairPartition(context.solver(), bert, greedy, rng);
  MCM_CHECK(repaired.success);
  const EvalResult baseline_eval = hardware.Evaluate(bert, repaired.partition);
  MCM_CHECK(baseline_eval.valid);
  std::printf("# BERT greedy baseline: %.3f ms / sample on hardware sim\n",
              baseline_eval.runtime_s * 1e3);
  PartitionEnv env(bert, hardware, baseline_eval.runtime_s);

  const auto curves =
      RunMethodsOnGraph(config, result.best_checkpoint, context, env,
                        config.bert_budget, HashCombine(seed, 43));
  for (int m = 0; m < kNumMethods; ++m) {
    result.curves.push_back(
        MethodCurve{kMethodNames[m], curves[static_cast<std::size_t>(m)]});
  }
  return result;
}

void PrintCurves(const std::string& title,
                 const std::vector<MethodCurve>& curves) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%8s", "samples");
  for (const MethodCurve& curve : curves) {
    std::printf("  %13s", curve.name.c_str());
  }
  std::printf("\n");
  const std::size_t length = curves.front().best_so_far.size();
  // Log-spaced checkpoints plus the final sample.
  std::vector<std::size_t> rows;
  for (std::size_t k = 1; k < length; k = std::max(k + 1, k * 3 / 2)) {
    rows.push_back(k);
  }
  rows.push_back(length);
  for (std::size_t row : rows) {
    std::printf("%8zu", row);
    for (const MethodCurve& curve : curves) {
      std::printf("  %13.3f", curve.best_so_far[row - 1]);
    }
    std::printf("\n");
  }
}

void PrintThresholdTable(const std::string& title,
                         const std::vector<MethodCurve>& curves,
                         const std::vector<double>& paper_thresholds) {
  // Locate the RL-from-scratch curve for the reduction factors.
  const MethodCurve* rl = nullptr;
  for (const MethodCurve& curve : curves) {
    if (curve.name == std::string("RL")) rl = &curve;
  }
  MCM_CHECK(rl != nullptr);

  auto samples_to = [](const MethodCurve& curve,
                       double threshold) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < curve.best_so_far.size(); ++i) {
      if (curve.best_so_far[i] >= threshold) return i + 1;
    }
    return std::nullopt;
  };

  // Substrate-relative thresholds: fractions of RL's final improvement.
  // The paper's absolute levels assume its production compiler's (much
  // weaker) baseline; the sample-efficiency comparison -- the actual claim
  // of Tables 2 and 3 -- is threshold-relative.
  std::vector<std::pair<std::string, double>> thresholds;
  const double rl_final = rl->best_so_far.back();
  for (double fraction : {0.90, 0.95, 0.99}) {
    char label[64];
    std::snprintf(label, sizeof(label), ">=%.0f%% of RL final (%.3fx)",
                  fraction * 100.0, fraction * rl_final);
    thresholds.emplace_back(label, fraction * rl_final);
  }
  for (double level : paper_thresholds) {
    char label[64];
    std::snprintf(label, sizeof(label), ">=%.2fx (paper level)", level);
    thresholds.emplace_back(label, level);
  }

  std::printf("\n%s\n", title.c_str());
  std::printf("%-32s", "threshold");
  for (const MethodCurve& curve : curves) {
    std::printf("  %18s", curve.name.c_str());
  }
  std::printf("\n");
  for (const auto& [label, level] : thresholds) {
    std::printf("%-32s", label.c_str());
    const std::optional<std::size_t> rl_samples = samples_to(*rl, level);
    for (const MethodCurve& curve : curves) {
      const std::optional<std::size_t> samples = samples_to(curve, level);
      if (!samples.has_value()) {
        std::printf("  %18s", "N.A. (N.A.)");
      } else if (rl_samples.has_value()) {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%zu (%.2fx)", *samples,
                      static_cast<double>(*rl_samples) /
                          static_cast<double>(*samples));
        std::printf("  %18s", cell);
      } else {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%zu (inf)", *samples);
        std::printf("  %18s", cell);
      }
    }
    std::printf("\n");
  }
}

}  // namespace mcm::bench
