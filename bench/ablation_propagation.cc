// Ablation of the solver's propagation strength (the design choices in
// DESIGN.md): triangle domain pruning and the connected-used-chips
// strengthening.  Measures solver effort (SetDomain calls, success rate)
// for uniform SAMPLE solves across graph scales.
#include <cstdio>

#include "common/env.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "solver/cp_solver.h"
#include "solver/modes.h"
#include "telemetry/trace.h"
#include "bench_common.h"

namespace {

using namespace mcm;

struct Setting {
  const char* label;
  CpSolver::Options options;
};

void RunCase(const Graph& graph, const Setting& setting, int solves,
             telemetry::RunReport& report) {
  CpSolver solver(graph, 36, setting.options);
  const ProbMatrix uniform = ProbMatrix::Uniform(graph.NumNodes(), 36);
  Rng rng(7);
  int successes = 0;
  std::int64_t calls = 0;
  const double start_s = telemetry::MonotonicSeconds();
  for (int k = 0; k < solves; ++k) {
    const SolveResult result =
        SolveSampleWithRestarts(solver, graph, uniform, rng);
    calls += result.set_domain_calls;
    if (result.success) ++successes;
  }
  const double ms = (telemetry::MonotonicSeconds() - start_s) * 1e3 / solves;
  std::printf("  %-28s success %2d/%2d, %8.0f set_domain calls/solve, "
              "%8.2f ms/solve\n",
              setting.label, successes, solves,
              static_cast<double>(calls) / solves, ms);
  const std::string key = graph.name() + "/" + setting.label;
  report.SetValue("calls_per_solve/" + key,
                  static_cast<double>(calls) / solves);
  report.SetValue("ms_per_solve/" + key, ms);
  report.SetValue("successes/" + key, successes);
}

}  // namespace

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  using namespace mcm;
  mcm::telemetry::RunReport report =
      mcm::bench::MakeBenchReport("ablation_propagation");
  mcm::telemetry::PhaseTimer phase_timer(report, "ablation");
  std::printf("=== Ablation: solver propagation strength (uniform SAMPLE "
              "solves) ===\n");
  const int solves = static_cast<int>(ScaledInt("MCM_ABLATION_SOLVES", 8, 50));

  const Setting settings[] = {
      {"full propagation", CpSolver::Options{}},
      {"no connected-used-chips",
       CpSolver::Options{.prune_triangle_domains = true,
                         .assume_connected_used_chips = false}},
      {"no triangle pruning",
       CpSolver::Options{.prune_triangle_domains = false,
                         .assume_connected_used_chips = false}},
  };

  const Graph cases[] = {MakeResNet("resnet", ResNetConfig{}),
                         MakeLstm("lstm", 20, 128, 256, 100), MakeBert()};
  for (const Graph& graph : cases) {
    std::printf("%s (%d nodes):\n", graph.name().c_str(), graph.NumNodes());
    for (const Setting& setting : settings) {
      // Weak settings thrash on BERT; cap their sample count.
      const int n = graph.NumNodes() > 1000 &&
                            !setting.options.assume_connected_used_chips
                        ? 1
                        : solves;
      RunCase(graph, setting, n, report);
    }
  }
  std::printf("# takeaway: the propagation layers remove orders of "
              "magnitude of backtracking on recurrent graphs (LSTM above); "
              "on BERT the value-selection rules carry part of the load, "
              "but weak-propagation solves degrade sharply with unlucky "
              "seeds (DESIGN.md, implementation notes).\n");
  mcm::bench::WriteBenchReport(report);
  return 0;
}
