// Closed-loop load generator for the partition service (`mcmpart serve`).
//
// Opens `--concurrency` connections to the daemon's Unix socket and keeps
// exactly one request outstanding per connection: every response
// immediately triggers the next request, so the offered load adapts to the
// service rate instead of overrunning it (closed-loop).  The workload is a
// fixed MLP graph with `--unique` distinct seed variants cycled across
// `--requests` total requests -- with unique < requests the tail re-asks
// earlier questions and exercises the placement cache.
//
// Client-side latency (send to response line) is recorded per request;
// the run writes BENCH_service.json (p50/p99/mean latency, throughput,
// ok/rejected/error counts) via the repo's bench-report convention.
//
// Admission rejections are retried on the same connection (the request is
// not lost) up to a global send cap, and counted separately so an
// overloaded run is visible in the report rather than silently thinner.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "service/protocol.h"
#include "telemetry/trace.h"

namespace mcm::bench {
namespace {

struct LoadgenOptions {
  std::string socket_path;
  int concurrency = 64;
  int requests = 512;
  int unique = 32;  // Distinct request variants; the rest are cache food.
  std::string mode = "solver";
  std::string model = "analytical";
  int chips = 8;
  int budget = 12;
};

struct Connection {
  int fd = -1;
  std::string read_buffer;
  double sent_s = 0.0;       // MonotonicSeconds() when the request went out.
  int work_item = -1;        // Index of the in-flight request, -1 when idle.
};

int ConnectOrDie(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("loadgen: bad socket path");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("loadgen: socket() failed");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    throw std::runtime_error("loadgen: connect(" + socket_path +
                             ") failed: " + std::strerror(errno));
  }
  return fd;
}

void WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = write(fd, data.data() + sent, data.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("loadgen: write failed");
    sent += static_cast<std::size_t>(n);
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int Run(const LoadgenOptions& options) {
  // One shared graph; request i is variant (i % unique) by seed, so a run
  // with unique < requests revisits identical requests and hits the cache.
  Graph graph = MakeMlp("loadgen", 512, {1024, 1024, 512, 256}, 64);
  std::ostringstream graph_os;
  graph.Serialize(graph_os);
  const std::string graph_text = graph_os.str();

  service::RequestMode mode;
  if (!service::ParseRequestMode(options.mode, &mode)) {
    throw std::runtime_error("loadgen: unknown mode: " + options.mode);
  }
  std::vector<std::string> request_lines;
  request_lines.reserve(static_cast<std::size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    service::PartitionRequest request;
    request.id = "lg" + std::to_string(i);
    request.mode = mode;
    request.model = options.model;
    request.graph_text = graph_text;
    request.chips = options.chips;
    request.budget = options.budget;
    request.seed = static_cast<std::uint64_t>(i % options.unique) + 1;
    request_lines.push_back(service::EncodeRequest(request) + "\n");
  }

  const int conns =
      std::max(1, std::min(options.concurrency, options.requests));
  std::vector<Connection> connections(static_cast<std::size_t>(conns));
  for (Connection& conn : connections) {
    conn.fd = ConnectOrDie(options.socket_path);
  }

  std::vector<double> latencies_s;
  latencies_s.reserve(request_lines.size());
  std::int64_t ok = 0, rejected = 0, errors = 0, cached = 0, dropped = 0;
  int next_item = 0;
  int in_flight = 0;
  // Retry budget: rejected requests are re-sent, but a pathological server
  // (queue depth 1, one executor) must not spin the bench forever.
  std::int64_t sends_left =
      static_cast<std::int64_t>(request_lines.size()) * 8;

  auto issue = [&](Connection& conn, int item) {
    conn.work_item = item;
    conn.sent_s = telemetry::MonotonicSeconds();
    --sends_left;
    ++in_flight;
    WriteAll(conn.fd, request_lines[static_cast<std::size_t>(item)]);
  };

  const double started_s = telemetry::MonotonicSeconds();
  for (Connection& conn : connections) {
    if (next_item < options.requests) issue(conn, next_item++);
  }

  std::vector<pollfd> fds(connections.size());
  while (in_flight > 0) {
    for (std::size_t i = 0; i < connections.size(); ++i) {
      fds[i] = pollfd{connections[i].fd,
                      static_cast<short>(connections[i].work_item >= 0
                                             ? POLLIN
                                             : 0),
                      0};
    }
    const int n = poll(fds.data(), fds.size(), /*timeout_ms=*/10000);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("loadgen: poll timed out");

    for (std::size_t i = 0; i < connections.size(); ++i) {
      Connection& conn = connections[i];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[8192];
      const ssize_t got = read(conn.fd, chunk, sizeof(chunk));
      if (got < 0 && (errno == EAGAIN || errno == EINTR)) continue;
      if (got <= 0) throw std::runtime_error("loadgen: daemon disconnected");
      conn.read_buffer.append(chunk, static_cast<std::size_t>(got));

      std::size_t start = 0;
      while (true) {
        const std::size_t newline = conn.read_buffer.find('\n', start);
        if (newline == std::string::npos) break;
        const std::string line =
            conn.read_buffer.substr(start, newline - start);
        start = newline + 1;

        service::PartitionResponse response;
        std::string error;
        if (!service::ParseResponse(line, &response, &error)) {
          throw std::runtime_error("loadgen: bad response: " + error);
        }
        const int item = conn.work_item;
        conn.work_item = -1;
        --in_flight;
        if (response.ok) {
          ++ok;
          if (response.cached) ++cached;
          latencies_s.push_back(telemetry::MonotonicSeconds() -
                                conn.sent_s);
        } else if (response.retry_after_ms > 0) {
          ++rejected;
          if (sends_left > 0) {
            issue(conn, item);  // Retry the same work item.
            continue;
          }
          ++dropped;
        } else {
          ++errors;
        }
        if (conn.work_item < 0 && next_item < options.requests &&
            sends_left > 0) {
          issue(conn, next_item++);
        }
      }
      conn.read_buffer.erase(0, start);
    }
  }
  const double wall_s = telemetry::MonotonicSeconds() - started_s;
  for (Connection& conn : connections) close(conn.fd);

  std::sort(latencies_s.begin(), latencies_s.end());
  double sum_s = 0.0;
  for (const double v : latencies_s) sum_s += v;
  const double mean_s =
      latencies_s.empty() ? 0.0
                          : sum_s / static_cast<double>(latencies_s.size());
  const double p50_s = Percentile(latencies_s, 0.50);
  const double p99_s = Percentile(latencies_s, 0.99);
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(ok) / wall_s : 0.0;

  std::printf("service loadgen: %d requests, %d connections, mode %s\n",
              options.requests, conns, options.mode.c_str());
  std::printf("  ok %lld (cached %lld), rejected %lld, errors %lld, "
              "dropped %lld\n",
              static_cast<long long>(ok), static_cast<long long>(cached),
              static_cast<long long>(rejected),
              static_cast<long long>(errors),
              static_cast<long long>(dropped));
  std::printf("  latency p50 %.3f ms, p99 %.3f ms, mean %.3f ms\n",
              p50_s * 1e3, p99_s * 1e3, mean_s * 1e3);
  std::printf("  throughput %.1f req/s over %.2f s\n", throughput, wall_s);

  telemetry::RunReport report = MakeBenchReport("service");
  report.AddPhaseSeconds("load", wall_s);
  report.SetString("mode", options.mode);
  report.SetString("model", options.model);
  report.SetString("socket", options.socket_path);
  report.SetValue("requests", static_cast<double>(options.requests));
  report.SetValue("concurrency", static_cast<double>(conns));
  report.SetValue("unique", static_cast<double>(options.unique));
  report.SetValue("ok", static_cast<double>(ok));
  report.SetValue("cached", static_cast<double>(cached));
  report.SetValue("rejected", static_cast<double>(rejected));
  report.SetValue("errors", static_cast<double>(errors));
  report.SetValue("dropped", static_cast<double>(dropped));
  report.SetValue("latency_p50_ms", p50_s * 1e3);
  report.SetValue("latency_p99_ms", p99_s * 1e3);
  report.SetValue("latency_mean_ms", mean_s * 1e3);
  report.SetValue("throughput_rps", throughput);
  WriteBenchReport(report);

  // Partial failure (errors, drops) is a report detail; a run only fails
  // when nothing completed at all.
  return ok > 0 ? 0 : 1;
}

}  // namespace
}  // namespace mcm::bench

int main(int argc, char** argv) {
  mcm::bench::InitBenchRuntime(argc, argv);
  mcm::bench::LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::runtime_error("loadgen: missing value for " + arg);
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket") options.socket_path = next();
      else if (arg == "--concurrency") options.concurrency = std::stoi(next());
      else if (arg == "--requests") options.requests = std::stoi(next());
      else if (arg == "--unique") options.unique = std::stoi(next());
      else if (arg == "--mode") options.mode = next();
      else if (arg == "--model") options.model = next();
      else if (arg == "--chips") options.chips = std::stoi(next());
      else if (arg == "--budget") options.budget = std::stoi(next());
      else if (arg == "--threads") next();  // Handled by InitBenchRuntime.
      else {
        std::fprintf(stderr, "loadgen: unknown flag %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr,
                 "usage: service_loadgen --socket PATH [--concurrency N] "
                 "[--requests N] [--unique N] [--mode "
                 "zeroshot|finetune|search|solver] [--model analytical|hwsim] "
                 "[--chips N] [--budget N]\n");
    return 2;
  }
  options.concurrency = std::max(1, options.concurrency);
  options.requests = std::max(1, options.requests);
  options.unique = std::max(1, std::min(options.unique, options.requests));
  try {
    return mcm::bench::Run(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
